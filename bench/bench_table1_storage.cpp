// Table 1 — storage cost for managing h entries on n servers.
//
// Prints the paper's formulas next to the measured storage of real
// placements. Randomized schemes (RandomServer, Hash) report the mean over
// --trials instances; the deterministic ones must match exactly.
#include "bench_util.hpp"

#include "pls/analysis/models.hpp"
#include "pls/core/strategy_factory.hpp"

namespace {

using namespace pls;

const metrics::TrialAccumulator& measure_storage(
    bench::JsonReport& report, const sim::TrialRunner& runner,
    const std::string& label, core::StrategyKind kind, std::size_t param,
    std::size_t n, std::size_t h, std::size_t trials,
    std::uint64_t master_seed) {
  auto& acc = report.point(label);
  acc = metrics::run_trials(
      runner, trials, master_seed, [&](std::size_t, std::uint64_t seed) {
        metrics::TrialAccumulator trial;
        const auto entries = bench::iota_entries(h);
        const auto s = core::make_strategy(
            core::StrategyConfig{.kind = kind, .param = param, .seed = seed},
            n);
        s->place(entries);
        trial.add("storage", static_cast<double>(s->storage_cost()));
        return trial;
      });
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = pls::bench::Args::parse(argc, argv);
  const std::size_t trials = args.runs ? args.runs : 50;
  constexpr std::size_t kServers = 10;
  const auto runner = args.runner();
  pls::bench::JsonReport report("table1_storage", args);

  pls::bench::print_title(
      "Table 1: storage cost for managing h entries on n servers",
      "n = 10; x = 20 (Fixed/RandomServer), y = 2 (Round/Hash); mean over " +
          std::to_string(trials) + " instances for randomized schemes");
  pls::bench::print_row_header(
      {"h", "strategy", "analytical", "measured", "rel.err%"});

  struct Row {
    pls::core::StrategyKind kind;
    std::size_t param;
  };
  const Row rows[] = {
      {pls::core::StrategyKind::kFullReplication, 1},
      {pls::core::StrategyKind::kFixed, 20},
      {pls::core::StrategyKind::kRandomServer, 20},
      {pls::core::StrategyKind::kRoundRobin, 2},
      {pls::core::StrategyKind::kHash, 2},
  };

  for (std::size_t h : {50u, 100u, 200u, 400u}) {
    for (const auto& row : rows) {
      double analytical = 0.0;
      switch (row.kind) {
        case pls::core::StrategyKind::kFullReplication:
          analytical = static_cast<double>(
              pls::analysis::storage_full_replication(h, kServers));
          break;
        case pls::core::StrategyKind::kFixed:
        case pls::core::StrategyKind::kRandomServer:
          analytical = static_cast<double>(
              pls::analysis::storage_per_server_x(h, kServers, row.param));
          break;
        case pls::core::StrategyKind::kRoundRobin:
          analytical = static_cast<double>(
              pls::analysis::storage_round_robin(h, row.param));
          break;
        case pls::core::StrategyKind::kHash:
          analytical =
              pls::analysis::storage_hash_expected(h, kServers, row.param);
          break;
      }
      const std::string label = "h=" + std::to_string(h) + "/" +
                                std::string(pls::core::to_string(row.kind));
      const double measured =
          measure_storage(report, runner, label, row.kind, row.param,
                          kServers, h, trials, args.seed)
              .mean("storage");
      pls::bench::print_cell(h);
      pls::bench::print_cell(pls::core::to_string(row.kind));
      pls::bench::print_cell(analytical);
      pls::bench::print_cell(measured);
      pls::bench::print_cell(analytical == 0.0
                                 ? 0.0
                                 : 100.0 * (measured - analytical) /
                                       analytical,
                             16, 2);
      pls::bench::end_row();
    }
  }
  pls::bench::print_note(
      "expected: FullRep h*n | Fixed/RandomServer x*n (capped at h*n) | "
      "Round h*y | Hash h*n*(1-(1-1/n)^y)");
  report.write();
  return 0;
}
