// Fig 12 — Fixed-x lookup failure time vs cushion size.
//
// Steady state h = 100 entries (lambda = 10), target t = 15, x = t + b for
// b = 0..7, exponential and Zipf-like lifetimes. Reported: percentage of
// execution time during which a partial_lookup(15) cannot be satisfied.
// Paper shape: >10% at b = 0, exponential drop with b, the heavy-tailed
// Zipf curve tapering at the end.
#include "bench_util.hpp"

#include "pls/common/stats.hpp"
#include "pls/core/strategy_factory.hpp"
#include "pls/workload/replay.hpp"

namespace {

using namespace pls;

double failure_percent(std::string_view lifetime, std::size_t cushion,
                       std::size_t runs, std::size_t updates,
                       std::uint64_t seed) {
  constexpr std::size_t kTarget = 15;
  RunningStats stats;
  for (std::size_t i = 0; i < runs; ++i) {
    workload::WorkloadConfig wc;
    wc.steady_state_entries = 100;
    wc.lifetime = std::string(lifetime);
    wc.num_updates = updates;
    wc.seed = seed + i * 31 + cushion;
    const auto wl = workload::generate_workload(wc);
    const auto s = core::make_strategy(
        core::StrategyConfig{.kind = core::StrategyKind::kFixed,
                             .param = kTarget + cushion,
                             .seed = seed + i},
        10);
    stats.add(100.0 * workload::unavailable_time_fraction(*s, wl, kTarget));
  }
  return stats.mean();
}

}  // namespace

int main(int argc, char** argv) {
  auto args = pls::bench::Args::parse(argc, argv);
  const std::size_t runs = args.runs ? args.runs : 40;
  const std::size_t updates = args.updates ? args.updates : 5000;

  pls::bench::print_title(
      "Fig 12: Fixed-x lookup failure time vs cushion (t = 15, h = 100)",
      std::to_string(runs) + " runs x " + std::to_string(updates) +
          " updates (paper: 5000 x 20000); values in % of execution time");
  pls::bench::print_row_header({"cushion", "exp %", "zipf %"});

  for (std::size_t b = 0; b <= 7; ++b) {
    pls::bench::print_cell(b);
    pls::bench::print_cell(failure_percent("exp", b, runs, updates,
                                           args.seed),
                           16, 4);
    pls::bench::print_cell(failure_percent("zipf", b, runs, updates,
                                           args.seed + 9999),
                           16, 4);
    pls::bench::end_row();
  }
  pls::bench::print_note(
      "expected shape: >10% at b=0, roughly exponential decay with b "
      "(x10 per ~2 cushion entries); the Zipf-like curve tapers at large "
      "b. Tail points below ~0.01% need paper-scale --runs/--updates to "
      "resolve.");
  return 0;
}
