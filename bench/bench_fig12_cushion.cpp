// Fig 12 — Fixed-x lookup failure time vs cushion size.
//
// Steady state h = 100 entries (lambda = 10), target t = 15, x = t + b for
// b = 0..7, exponential and Zipf-like lifetimes. Reported: percentage of
// execution time during which a partial_lookup(15) cannot be satisfied.
// Paper shape: >10% at b = 0, exponential drop with b, the heavy-tailed
// Zipf curve tapering at the end.
#include "bench_util.hpp"

#include "pls/core/strategy_factory.hpp"
#include "pls/workload/replay.hpp"

namespace {

using namespace pls;

double failure_percent(bench::JsonReport& report,
                       const sim::TrialRunner& runner,
                       std::string_view lifetime, std::size_t cushion,
                       std::size_t trials, std::size_t updates,
                       std::uint64_t master_seed) {
  constexpr std::size_t kTarget = 15;
  const std::string label =
      "b=" + std::to_string(cushion) + "/" + std::string(lifetime);
  auto& acc = report.point(label);
  acc = metrics::run_trials(
      runner, trials, master_seed + cushion,
      [&](std::size_t, std::uint64_t seed) {
        metrics::TrialAccumulator trial;
        workload::WorkloadConfig wc;
        wc.steady_state_entries = 100;
        wc.lifetime = std::string(lifetime);
        wc.num_updates = updates;
        wc.seed = seed + 1;
        const auto wl = workload::generate_workload(wc);
        const auto s = core::make_strategy(
            core::StrategyConfig{.kind = core::StrategyKind::kFixed,
                                 .param = kTarget + cushion,
                                 .seed = seed},
            10);
        trial.add("unavailable_percent",
                  100.0 *
                      workload::unavailable_time_fraction(*s, wl, kTarget));
        return trial;
      });
  return acc.mean("unavailable_percent");
}

}  // namespace

int main(int argc, char** argv) {
  auto args = pls::bench::Args::parse(argc, argv);
  const std::size_t trials = args.runs ? args.runs : 40;
  const std::size_t updates = args.updates ? args.updates : 5000;
  const auto runner = args.runner();
  pls::bench::JsonReport report("fig12_cushion", args);

  pls::bench::print_title(
      "Fig 12: Fixed-x lookup failure time vs cushion (t = 15, h = 100)",
      std::to_string(trials) + " trials x " + std::to_string(updates) +
          " updates (paper: 5000 x 20000); values in % of execution time");
  pls::bench::print_row_header({"cushion", "exp %", "zipf %"});

  for (std::size_t b = 0; b <= 7; ++b) {
    pls::bench::print_cell(b);
    pls::bench::print_cell(failure_percent(report, runner, "exp", b, trials,
                                           updates, args.seed),
                           16, 4);
    pls::bench::print_cell(failure_percent(report, runner, "zipf", b, trials,
                                           updates, args.seed + 9999),
                           16, 4);
    pls::bench::end_row();
  }
  pls::bench::print_note(
      "expected shape: >10% at b=0, roughly exponential decay with b "
      "(x10 per ~2 cushion entries); the Zipf-like curve tapers at large "
      "b. Tail points below ~0.01% need paper-scale --trials/--updates to "
      "resolve.");
  report.write();
  return 0;
}
