// Table 2 — the star-rating strategy summary, derived from measurements.
//
// The paper hard-codes its stars; we run a standard scenario battery (the
// Figs 4/6/7/9 configuration plus two churn scenarios) and rank the four
// partial-lookup schemes per column. The measured values behind each star
// are printed too, so the ranking is auditable.
#include "bench_util.hpp"

#include "pls/analysis/summary.hpp"

int main(int argc, char** argv) {
  auto args = pls::bench::Args::parse(argc, argv);
  pls::bench::JsonReport report("table2_summary", args);

  pls::analysis::SummaryConfig cfg;
  cfg.instances = args.runs ? args.runs : 10;
  cfg.lookups_per_instance = args.lookups ? args.lookups : 2000;
  cfg.updates = args.updates ? args.updates : 2000;
  cfg.seed = args.seed;
  cfg.jobs = args.jobs;

  pls::bench::print_title(
      "Table 2: strategy summary (stars from measured rankings; 4 = best)",
      "h = 100, n = 10, budget 200; " + std::to_string(cfg.instances) +
          " instances per scenario");

  const auto table = pls::analysis::measured_star_table(cfg);
  std::cout << pls::analysis::format_star_table(table);

  std::cout << "\n# raw measured values per column:\n";
  pls::bench::print_row_header({"strategy", "sto(few)", "sto(many)", "cover",
                                "fault", "fair(st)", "fair(dyn)", "lookup",
                                "upd(s)", "upd(l)"},
                               12);
  for (const auto& row : table.rows) {
    std::cout << std::setw(12) << pls::core::to_string(row.kind);
    for (double v : row.values) pls::bench::print_cell(v, 12, 2);
    pls::bench::end_row();

    auto& acc = report.point(std::string(pls::core::to_string(row.kind)));
    for (std::size_t c = 0; c < pls::analysis::kSummaryColumns; ++c) {
      acc.add(pls::analysis::kSummaryColumnNames[c], row.values[c]);
      acc.add(std::string(pls::analysis::kSummaryColumnNames[c]) + "/stars",
              row.stars[c]);
    }
  }
  pls::bench::print_note(
      "paper qualitative claims to check: no strategy dominates; Fixed "
      "wins fault tolerance & small-target updates; Round wins fairness & "
      "lookup cost; Hash wins large-target updates; RandomServer balances "
      "coverage and static fairness.");
  report.write();
  return 0;
}
