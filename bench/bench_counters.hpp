// Shared deterministic-counter plumbing for the google-benchmark binaries.
//
// Wall-clock numbers vary across machines; the per-op counters below do
// not: fixed iteration counts plus pre-loop warm-up make them exact
// steady-state values, which scripts/perf_check.sh extracts (from
// bench_micro_ops and bench_event_queue) and diffs against the checked-in
// BENCH_micro_ops.json baseline.
#pragma once

#include <cstdint>

#include <benchmark/benchmark.h>

#include "pls/common/alloc_stats.hpp"
#include "pls/net/shared_entries.hpp"

namespace pls::bench {

/// Captures AllocStats and the SharedEntries deep-copy counter around the
/// timed loop and reports per-op averages:
///   allocs_per_op / bytes_per_op   heap traffic per operation, measured by
///                                  pls::AllocStats (all zeros unless built
///                                  with -DPLS_COUNT_ALLOCS=ON)
///   payload_copies_per_op          SharedEntries deep copies per operation
/// Construct after warm-up, call finish() after the loop.
class CounterScope {
 public:
  explicit CounterScope(benchmark::State& state)
      : state_(state),
        alloc_before_(AllocStats::current()),
        copies_before_(net::SharedEntries::deep_copy_count()) {}

  void finish() {
    const AllocStats delta = AllocStats::current() - alloc_before_;
    const std::uint64_t copies =
        net::SharedEntries::deep_copy_count() - copies_before_;
    using benchmark::Counter;
    state_.counters["allocs_per_op"] = Counter(
        static_cast<double>(delta.allocations), Counter::kAvgIterations);
    state_.counters["bytes_per_op"] =
        Counter(static_cast<double>(delta.bytes), Counter::kAvgIterations);
    state_.counters["payload_copies_per_op"] =
        Counter(static_cast<double>(copies), Counter::kAvgIterations);
  }

 private:
  benchmark::State& state_;
  AllocStats alloc_before_;
  std::uint64_t copies_before_;
};

}  // namespace pls::bench
